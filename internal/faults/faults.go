// Package faults models the failure processes the FCR evaluation
// injects: transient data corruption on channel traversals and a
// fail/repair timeline of permanent-until-repaired link and node
// failures.
//
// Transient faults flip payload (or checksum) bits of flits crossing a
// link, exactly the data-path errors the paper's per-flit checksums
// detect. Two corruption processes are provided: the i.i.d. Bernoulli
// process (Transient) and a Gilbert-Elliott two-state bursty process
// (GilbertElliott, see gilbert.go); both satisfy Corrupter. Control
// metadata (kind, tail mark, tear-down signals) is modeled as reliable —
// the paper protects control lines with separate coding, so corrupting
// them would only change constants, not behavior.
//
// Permanent faults are scheduled Events: a link (or a whole node, taking
// down every incident link) goes down at a cycle and may come back up at
// a later one. The network reacts to a failure by tearing down worms
// that hold the dead resources so the CR retry protocol routes
// replacement attempts around them; a repair restores the link with
// empty buffers and full credits. RandomTimeline (see timeline.go)
// generates MTBF/MTTR-driven random fail/repair schedules for chaos
// testing.
package faults

import (
	"fmt"
	"sort"

	"crnet/internal/flit"
	"crnet/internal/rng"
	"crnet/internal/snapshot"
)

// Corrupter is a transient data-corruption process applied to every flit
// crossing a link. Implementations are deterministic given their seed
// and checkpointable: SaveState/LoadState capture the process position
// (RNG stream, channel state, injected count) so a restored network
// replays the exact corruption stream an unbroken run would see.
type Corrupter interface {
	// Apply possibly corrupts f in place and reports whether it did.
	Apply(f *flit.Flit) bool
	// Injected returns how many corruptions have been applied.
	Injected() int64
	// SaveState appends the process state to a snapshot.
	SaveState(e *snapshot.Encoder)
	// LoadState restores a state written by SaveState of the same
	// process kind.
	LoadState(d *snapshot.Decoder) error
}

// corruptFlit flips one uniformly chosen bit of the payload or, one time
// in nine, of the checksum byte — so both data and check-bit errors are
// exercised. Shared by every corruption process.
func corruptFlit(r *rng.Source, f *flit.Flit) {
	bit := r.Intn(72)
	if bit < 64 {
		f.Payload ^= 1 << uint(bit)
	} else {
		f.Check ^= 1 << uint(bit-64)
	}
}

// Transient is a Bernoulli per-flit-traversal corruption process. The
// zero value injects nothing.
type Transient struct {
	// Rate is the probability that a flit is corrupted on one link
	// traversal.
	Rate float64 //cr:nosnap configuration, set by the owner at construction
	rng  *rng.Source

	injected int64
}

// NewTransient returns a transient fault process with its own RNG stream.
func NewTransient(rate float64, seed uint64) *Transient {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("faults: transient rate %v outside [0,1]", rate))
	}
	return &Transient{Rate: rate, rng: rng.New(seed)}
}

// Apply possibly corrupts f in place and reports whether it did.
func (t *Transient) Apply(f *flit.Flit) bool {
	if t == nil || t.Rate <= 0 {
		return false
	}
	if !t.rng.Bernoulli(t.Rate) {
		return false
	}
	t.injected++
	corruptFlit(t.rng, f)
	return true
}

// Injected returns how many corruptions have been applied.
func (t *Transient) Injected() int64 {
	if t == nil {
		return 0
	}
	return t.injected
}

// LinkID names a unidirectional link by its source endpoint: node and
// output port.
type LinkID struct {
	Node int
	Port int
}

// EventKind distinguishes link-level from node-level fault events.
type EventKind uint8

const (
	// LinkEvent targets a single unidirectional link (Event.Link).
	LinkEvent EventKind = iota
	// NodeEvent targets a whole router (Event.Node): every incident
	// link, both directions, fails or is repaired together.
	NodeEvent
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k == NodeEvent {
		return "node"
	}
	return "link"
}

// Event is one scheduled fault-timeline event: a link or node failure
// (Up=false) or repair (Up=true). The zero value of Kind/Up makes the
// historical literal Event{Cycle, Link} a link failure.
//
// Failures are reference counted by the network: a link taken down both
// by its own LinkEvent and by an incident NodeEvent needs both repairs
// before it comes back up, and duplicate failures of one link need as
// many repairs. Repairing an up link is a no-op.
type Event struct {
	Cycle int64
	Kind  EventKind
	Link  LinkID // LinkEvent target
	Node  int    // NodeEvent target
	Up    bool   // false = fail, true = repair
}

// String implements fmt.Stringer.
func (e Event) String() string {
	dir := "down"
	if e.Up {
		dir = "up"
	}
	if e.Kind == NodeEvent {
		return fmt.Sprintf("{cycle %d: node %d %s}", e.Cycle, e.Node, dir)
	}
	return fmt.Sprintf("{cycle %d: link (%d,%d) %s}", e.Cycle, e.Link.Node, e.Link.Port, dir)
}

// Schedule is an ordered fail/repair timeline. Construct with
// NewSchedule; Pop events as simulation time advances. Events at the
// same cycle apply in their pre-sort order (NewSchedule sorts stably),
// so a same-cycle fail+repair pair nets to the state of the later entry.
type Schedule struct {
	events []Event
	next   int
}

// NewSchedule returns a schedule of the given events, sorted stably by
// cycle (same-cycle events keep their given order).
func NewSchedule(events []Event) *Schedule {
	s := &Schedule{events: append([]Event(nil), events...)}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Cycle < s.events[j].Cycle })
	return s
}

// Pop returns all events due at or before now, advancing the cursor.
func (s *Schedule) Pop(now int64) []Event {
	if s == nil {
		return nil
	}
	start := s.next
	for s.next < len(s.events) && s.events[s.next].Cycle <= now {
		s.next++
	}
	return s.events[start:s.next]
}

// Rewind restarts the timeline from its first event, so a reset network
// replays the same fault history. A nil schedule is a no-op.
func (s *Schedule) Rewind() {
	if s != nil {
		s.next = 0
	}
}

// Remaining returns how many events have not fired yet.
func (s *Schedule) Remaining() int {
	if s == nil {
		return 0
	}
	return len(s.events) - s.next
}

// Events returns the full timeline in firing order, for inspection.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

// RandomLinks builds a failure schedule killing n distinct links chosen
// uniformly from the given candidates, all at the given cycle. It is the
// workload for the permanent-fault experiment (E9).
func RandomLinks(candidates []LinkID, n int, cycle int64, seed uint64) *Schedule {
	if n > len(candidates) {
		panic(fmt.Sprintf("faults: want %d dead links, only %d candidates", n, len(candidates)))
	}
	r := rng.New(seed)
	perm := make([]int, len(candidates))
	r.Perm(perm)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, Event{Cycle: cycle, Link: candidates[perm[i]]})
	}
	return NewSchedule(events)
}
