// Package faults models the failure processes the FCR evaluation
// injects: transient data corruption on channel traversals and permanent
// link failures.
//
// Transient faults flip payload (or checksum) bits of flits crossing a
// link, exactly the data-path errors the paper's per-flit checksums
// detect. Control metadata (kind, tail mark, tear-down signals) is
// modeled as reliable — the paper protects control lines with separate
// coding, so corrupting them would only change constants, not behavior.
//
// Permanent faults take a link down at a scheduled cycle; the network
// reacts by tearing down worms that hold the link and the CR retry
// protocol routes replacement attempts around it.
package faults

import (
	"fmt"
	"sort"

	"crnet/internal/flit"
	"crnet/internal/rng"
)

// Transient is a Bernoulli per-flit-traversal corruption process. The
// zero value injects nothing.
type Transient struct {
	// Rate is the probability that a flit is corrupted on one link
	// traversal.
	Rate float64
	rng  *rng.Source

	injected int64
}

// NewTransient returns a transient fault process with its own RNG stream.
func NewTransient(rate float64, seed uint64) *Transient {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("faults: transient rate %v outside [0,1]", rate))
	}
	return &Transient{Rate: rate, rng: rng.New(seed)}
}

// Apply possibly corrupts f in place and reports whether it did. With
// probability Rate it flips one uniformly chosen bit of the payload or,
// one time in nine, of the checksum byte — so both data and check-bit
// errors are exercised.
func (t *Transient) Apply(f *flit.Flit) bool {
	if t == nil || t.Rate <= 0 {
		return false
	}
	if !t.rng.Bernoulli(t.Rate) {
		return false
	}
	t.injected++
	bit := t.rng.Intn(72)
	if bit < 64 {
		f.Payload ^= 1 << uint(bit)
	} else {
		f.Check ^= 1 << uint(bit-64)
	}
	return true
}

// Injected returns how many corruptions have been applied.
func (t *Transient) Injected() int64 {
	if t == nil {
		return 0
	}
	return t.injected
}

// LinkID names a unidirectional link by its source endpoint: node and
// output port.
type LinkID struct {
	Node int
	Port int
}

// Event is one scheduled permanent failure.
type Event struct {
	Cycle int64
	Link  LinkID
}

// Schedule is an ordered list of permanent link failures. Construct with
// NewSchedule; Pop events as simulation time advances.
type Schedule struct {
	events []Event
	next   int
}

// NewSchedule returns a schedule of the given events, sorted by cycle.
func NewSchedule(events []Event) *Schedule {
	s := &Schedule{events: append([]Event(nil), events...)}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Cycle < s.events[j].Cycle })
	return s
}

// Pop returns all events due at or before now, advancing the cursor.
func (s *Schedule) Pop(now int64) []Event {
	if s == nil {
		return nil
	}
	start := s.next
	for s.next < len(s.events) && s.events[s.next].Cycle <= now {
		s.next++
	}
	return s.events[start:s.next]
}

// Remaining returns how many events have not fired yet.
func (s *Schedule) Remaining() int {
	if s == nil {
		return 0
	}
	return len(s.events) - s.next
}

// RandomLinks builds a failure schedule killing n distinct links chosen
// uniformly from the given candidates, all at the given cycle. It is the
// workload for the permanent-fault experiment (E9).
func RandomLinks(candidates []LinkID, n int, cycle int64, seed uint64) *Schedule {
	if n > len(candidates) {
		panic(fmt.Sprintf("faults: want %d dead links, only %d candidates", n, len(candidates)))
	}
	r := rng.New(seed)
	perm := make([]int, len(candidates))
	r.Perm(perm)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, Event{Cycle: cycle, Link: candidates[perm[i]]})
	}
	return NewSchedule(events)
}
