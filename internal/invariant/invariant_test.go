package invariant

import (
	"errors"
	"testing"

	"crnet/internal/core"
	"crnet/internal/faults"
	"crnet/internal/flit"
	"crnet/internal/network"
	"crnet/internal/routing"
	"crnet/internal/topology"
)

// permutationLoad submits the dense antipodal permutation traffic that
// wedges a 1-VC fully adaptive network without CR (the paper's
// motivating deadlock).
func permutationLoad(n *network.Network, topo topology.Topology) {
	id := flit.MessageID(1)
	for round := 0; round < 8; round++ {
		for src := 0; src < topo.Nodes(); src++ {
			dst := (src + topo.Nodes()/2 + round) % topo.Nodes()
			if dst == src {
				continue
			}
			n.SubmitMessage(flit.Message{ID: id, Src: topology.NodeID(src), Dst: topology.NodeID(dst), DataLen: 24})
			id++
		}
	}
}

func buildNet(topo topology.Topology, protocol core.Protocol) *network.Network {
	return network.New(network.Config{
		Topo:     topo,
		Alg:      routing.MinimalAdaptive{},
		Protocol: protocol,
		Backoff:  core.Backoff{Kind: core.BackoffExponential, Gap: 8},
		Check:    true,
	})
}

// The acceptance-criteria pair: the watchdog reports the plain adaptive
// deadlock as a structured Deadlock violation, while CR under the same
// load completes with zero violations.
func TestWatchdogCatchesRealDeadlock(t *testing.T) {
	topo := topology.NewTorus(4, 2)

	plain := buildNet(topo, core.Plain)
	w := New(Config{DeadlockWindow: 1500})
	plain.SetMonitor(w)
	permutationLoad(plain, topo)
	for c := 0; c < 8000 && plain.Health() == nil; c++ {
		plain.Step()
	}
	err := plain.Health()
	if err == nil {
		t.Fatal("watchdog did not flag the deadlocked plain adaptive network")
	}
	var v Violation
	if !errors.As(err, &v) {
		t.Fatalf("health error %T is not a Violation: %v", err, err)
	}
	if v.Kind != Deadlock {
		t.Fatalf("violation kind %v, want deadlock: %v", v.Kind, v)
	}
	if len(w.Violations()) == 0 || w.Scans() == 0 {
		t.Fatalf("watchdog state inconsistent: %d violations, %d scans", len(w.Violations()), w.Scans())
	}

	cr := buildNet(topo, core.CR)
	wcr := New(Config{DeadlockWindow: 1500})
	cr.SetMonitor(wcr)
	permutationLoad(cr, topo)
	submitted := cr.InjectorStats().Submitted
	delivered := int64(0)
	for c := 0; c < 400000 && delivered < submitted; c++ {
		cr.Step()
		delivered += int64(len(cr.DrainDeliveries()))
		if cr.Health() != nil {
			t.Fatalf("CR run flagged unhealthy: %v", cr.Health())
		}
	}
	if delivered != submitted {
		t.Fatalf("CR delivered %d of %d", delivered, submitted)
	}
	if len(wcr.Violations()) != 0 {
		t.Fatalf("CR run recorded violations: %v", wcr.Violations())
	}
	if wcr.Scans() == 0 {
		t.Fatal("watchdog never scanned the CR run")
	}
}

func TestWatchdogLivelockBudget(t *testing.T) {
	topo := topology.NewTorus(8, 2)
	n := buildNet(topo, core.CR)
	// A hop budget of 1 convicts any multi-hop worm: structural proof
	// the hop accounting reaches the watchdog.
	n.SetMonitor(New(Config{HopBudget: 1, CheckEvery: 1}))
	n.SubmitMessage(flit.Message{ID: 1, Src: 0, Dst: 5, DataLen: 4})
	for c := 0; c < 200 && n.Health() == nil; c++ {
		n.Step()
	}
	var v Violation
	if err := n.Health(); !errors.As(err, &v) || v.Kind != Livelock {
		t.Fatalf("want livelock violation, got %v", err)
	}
}

func TestWatchdogObligationOnUnjustifiedFailure(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	n := network.New(network.Config{
		Topo:        topo,
		Alg:         routing.MinimalAdaptive{},
		Protocol:    core.CR,
		Timeout:     8, // hair-trigger kills under contention
		MaxAttempts: 1, // abandon on first kill
		Backoff:     core.Backoff{Kind: core.BackoffStatic, Gap: 4},
		Check:       true,
	})
	n.SetMonitor(New(Config{CheckEvery: 16}))
	permutationLoad(n, topo)
	for c := 0; c < 20000 && n.Health() == nil; c++ {
		n.Step()
		n.DrainDeliveries()
	}
	var v Violation
	if err := n.Health(); !errors.As(err, &v) || v.Kind != Obligation {
		t.Fatalf("want obligation violation (connected endpoints, no faults), got %v", err)
	}

	// The same setup with SkipObligations stays healthy: the failures
	// are deliberate, not a protocol bug.
	relaxed := network.New(network.Config{
		Topo:        topo,
		Alg:         routing.MinimalAdaptive{},
		Protocol:    core.CR,
		Timeout:     8,
		MaxAttempts: 1,
		Backoff:     core.Backoff{Kind: core.BackoffStatic, Gap: 4},
		Check:       true,
	})
	relaxed.SetMonitor(New(Config{CheckEvery: 16, SkipObligations: true}))
	permutationLoad(relaxed, topo)
	for c := 0; c < 20000; c++ {
		relaxed.Step()
		relaxed.DrainDeliveries()
		if relaxed.Health() != nil {
			t.Fatalf("SkipObligations run flagged: %v", relaxed.Health())
		}
	}
}

func TestWatchdogObligationAllowsDisconnection(t *testing.T) {
	// Node 0 on a 4x1 ring loses both its links: messages 0->2 must be
	// abandoned, and the watchdog must accept that (endpoints
	// disconnected).
	topo := topology.NewTorus(4, 1)
	n := network.New(network.Config{
		Topo:        topo,
		Alg:         routing.MinimalAdaptive{},
		Protocol:    core.CR,
		Timeout:     16,
		MaxAttempts: 3,
		Backoff:     core.Backoff{Kind: core.BackoffStatic, Gap: 4},
		Faults: faults.NewSchedule([]faults.Event{
			{Cycle: 5, Kind: faults.NodeEvent, Node: 1},
			{Cycle: 5, Kind: faults.NodeEvent, Node: 3},
		}),
		Check: true,
	})
	n.SetMonitor(New(Config{CheckEvery: 8}))
	n.SubmitMessage(flit.Message{ID: 1, Src: 0, Dst: 2, DataLen: 4, CreateTime: 10})
	for c := 0; c < 5000; c++ {
		n.Step()
		if n.Health() != nil {
			t.Fatalf("legitimate disconnection flagged: %v", n.Health())
		}
	}
	if n.InjectorStats().Failed == 0 {
		t.Fatal("message was not abandoned despite disconnection")
	}
}

func TestFlitLedgerCheck(t *testing.T) {
	good := network.FlitLedger{Injected: 100, Ejected: 60, Purged: 10, Stragglers: 5, Dropped: 5, Buffered: 12, InFlight: 8}
	if err := good.Check(); err != nil {
		t.Fatalf("balanced ledger rejected: %v", err)
	}
	bad := good
	bad.Buffered++ // a flit appeared from nowhere
	if bad.Check() == nil {
		t.Fatal("unbalanced ledger accepted")
	}
}

func TestViolationFormatting(t *testing.T) {
	v := Violation{Kind: Conservation, Cycle: 42, Detail: "x"}
	if v.Error() == "" || Kind(99).String() == "" {
		t.Fatal("empty formatting")
	}
}
