// Package invariant implements the runtime watchdog: a network.Monitor
// that periodically audits a running simulation and fails the run
// loudly, with a structured violation, the moment it stops looking like
// a correct execution of the protocol — instead of letting a buggy or
// wedged run silently emit garbage tables.
//
// Four invariants are checked:
//
//   - Flit conservation: every injected flit is ejected, purged,
//     absorbed, dropped by a dying link, buffered, or in flight —
//     exactly once (network.FlitLedger).
//   - Deadlock: no worm's header may sit blocked at output allocation
//     for DeadlockWindow consecutive cycles. This is true deadlock
//     detection at the routers, distinct from CR's source timeouts
//     (which fire orders of magnitude earlier and kill the worm); a
//     worm that stays blocked this long has escaped every recovery
//     mechanism.
//   - Livelock: no worm may claim more than HopBudget channels in one
//     attempt (flit.Flit.Hops); misrouting must stay bounded.
//   - Delivery obligation: a message may only be abandoned
//     (MaxAttempts exhausted) if the fault timeline could actually have
//     disconnected its endpoints. An abandonment with the endpoints
//     connected and no fault event during the message's lifetime is a
//     protocol failure.
package invariant

import (
	"fmt"

	"crnet/internal/network"
)

// Kind classifies a violation.
type Kind uint8

const (
	// Conservation: the flit ledger does not balance.
	Conservation Kind = iota
	// Deadlock: a worm has been blocked past the deadlock window.
	Deadlock
	// Livelock: a worm has exceeded its hop budget.
	Livelock
	// Obligation: a message failed while its endpoints were connected.
	Obligation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Conservation:
		return "conservation"
	case Deadlock:
		return "deadlock"
	case Livelock:
		return "livelock"
	case Obligation:
		return "obligation"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Violation is one detected invariant breach. It implements error.
type Violation struct {
	Kind   Kind
	Cycle  int64
	Detail string
}

// Error implements the error interface.
func (v Violation) Error() string {
	return fmt.Sprintf("invariant violation [%s] at cycle %d: %s", v.Kind, v.Cycle, v.Detail)
}

// Config parameterizes the watchdog. The zero value enables every check
// with the defaults below.
type Config struct {
	// CheckEvery is the scan period in cycles; 0 means 64.
	CheckEvery int
	// DeadlockWindow is how many consecutive blocked cycles convict a
	// worm of deadlock; 0 means 2000 (far beyond any CR source timeout,
	// so healthy CR runs never trip it).
	DeadlockWindow int
	// HopBudget bounds channels claimed per attempt; 0 means
	// 8*diameter+64 (generous slack over minimal paths plus bounded
	// misrouting).
	HopBudget int
	// SkipObligations disables the delivery-obligation check, for runs
	// that deliberately overwhelm the retry budget (e.g. MaxAttempts
	// ablations).
	SkipObligations bool
}

// Watchdog audits a running network. Construct with New and install via
// network.SetMonitor; a watchdog is stateful and belongs to exactly one
// network. It implements network.Monitor.
type Watchdog struct {
	cfg Config

	scans      int64
	violations []Violation
	seenFails  int // failure records already audited
	hopBudget  int // resolved on first scan (needs the topology)
}

// New returns a watchdog with the given configuration.
func New(cfg Config) *Watchdog {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 64
	}
	if cfg.DeadlockWindow <= 0 {
		cfg.DeadlockWindow = 2000
	}
	return &Watchdog{cfg: cfg}
}

// Scans returns how many audits have run.
func (w *Watchdog) Scans() int64 { return w.scans }

// Violations returns every violation recorded so far.
func (w *Watchdog) Violations() []Violation { return w.violations }

// AfterStep implements network.Monitor: every CheckEvery cycles it
// audits the network and returns the first violation found (which the
// network latches as its health error).
func (w *Watchdog) AfterStep(n *network.Network) error {
	if n.Cycle()%int64(w.cfg.CheckEvery) != 0 {
		return nil
	}
	return w.Audit(n)
}

// Audit runs one full scan immediately, regardless of the scan
// schedule, and returns the first new violation found (nil when the
// network passes every check). AfterStep calls it on schedule; the
// checkpoint bisector (sim.Bisect) calls it directly against restored
// snapshots, where the network is at an arbitrary cycle and no monitor
// is installed.
func (w *Watchdog) Audit(n *network.Network) error {
	w.scans++
	if w.hopBudget == 0 {
		w.hopBudget = w.cfg.HopBudget
		if w.hopBudget <= 0 {
			w.hopBudget = 8*n.Topology().Diameter() + 64
		}
	}
	before := len(w.violations)
	w.checkConservation(n)
	w.checkDeadlock(n)
	w.checkLivelock(n)
	if !w.cfg.SkipObligations {
		w.checkObligations(n)
	}
	if len(w.violations) > before {
		return w.violations[before]
	}
	return nil
}

func (w *Watchdog) report(n *network.Network, kind Kind, format string, args ...interface{}) {
	w.violations = append(w.violations, Violation{
		Kind:   kind,
		Cycle:  n.Cycle(),
		Detail: fmt.Sprintf(format, args...),
	})
}

func (w *Watchdog) checkConservation(n *network.Network) {
	if err := n.Ledger().Check(); err != nil {
		w.report(n, Conservation, "%v", err)
	}
}

func (w *Watchdog) checkDeadlock(n *network.Network) {
	blocked := n.BlockedWorms(w.cfg.DeadlockWindow)
	if len(blocked) == 0 {
		return
	}
	b := blocked[0]
	w.report(n, Deadlock,
		"%d worm(s) blocked >= %d cycles; first: worm %d.%d at node %d input (%d,%d), blocked %d cycles",
		len(blocked), w.cfg.DeadlockWindow,
		b.Worm.Message(), b.Worm.Attempt(), b.Node, b.Port, b.VC, b.Blocked)
}

func (w *Watchdog) checkLivelock(n *network.Network) {
	hops, worm := n.MaxHops()
	if hops <= w.hopBudget {
		return
	}
	w.report(n, Livelock, "worm %d.%d claimed %d channels, budget %d",
		worm.Message(), worm.Attempt(), hops, w.hopBudget)
}

// checkObligations audits new abandoned-message records. An abandonment
// is legitimate only if the fault timeline could have disconnected the
// endpoints: if they are connected now AND no fault event fired during
// the message's lifetime (so connectivity never changed underneath it),
// the protocol gave up on a deliverable message.
func (w *Watchdog) checkObligations(n *network.Network) {
	fails := n.MessageFailures()
	for _, f := range fails[w.seenFails:] {
		if n.LastFaultCycle() >= f.Created {
			continue // topology changed during its lifetime: plausible disconnect
		}
		if !n.Connected(f.Src, f.Dst) {
			continue // genuinely disconnected
		}
		w.report(n, Obligation,
			"message %d (%d->%d, created cycle %d) abandoned after %d attempts with endpoints connected and no fault during its lifetime",
			f.Msg, f.Src, f.Dst, f.Created, f.Attempts)
	}
	w.seenFails = len(fails)
}
