package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func allTopologies() []Topology {
	return []Topology{
		NewTorus(4, 2),
		NewTorus(5, 2),
		NewTorus(16, 2),
		NewTorus(4, 3),
		NewMesh(4, 2),
		NewMesh(8, 2),
		NewMesh(3, 3),
		NewHypercube(3),
		NewHypercube(6),
	}
}

func TestNodesAndNames(t *testing.T) {
	cases := []struct {
		topo  Topology
		nodes int
		name  string
	}{
		{NewTorus(16, 2), 256, "16x16 torus"},
		{NewMesh(8, 2), 64, "8x8 mesh"},
		{NewTorus(4, 3), 64, "4x4x4 torus"},
		{NewHypercube(6), 64, "6-cube"},
	}
	for _, c := range cases {
		if got := c.topo.Nodes(); got != c.nodes {
			t.Errorf("%s: Nodes() = %d, want %d", c.name, got, c.nodes)
		}
		if got := c.topo.Name(); got != c.name {
			t.Errorf("Name() = %q, want %q", got, c.name)
		}
	}
}

func TestGridCoordRoundTrip(t *testing.T) {
	g := NewTorus(5, 3)
	for id := NodeID(0); int(id) < g.Nodes(); id++ {
		c0, c1, c2 := g.Coord(id, 0), g.Coord(id, 1), g.Coord(id, 2)
		if back := g.Node(c0, c1, c2); back != id {
			t.Fatalf("Node(Coord(%d)) = %d", id, back)
		}
	}
}

func TestNodeNormalizesCoords(t *testing.T) {
	g := NewTorus(4, 2)
	if g.Node(-1, 0) != g.Node(3, 0) {
		t.Error("negative coordinate did not wrap")
	}
	if g.Node(5, 2) != g.Node(1, 2) {
		t.Error("overflow coordinate did not wrap")
	}
}

func TestNeighborReverseInverse(t *testing.T) {
	for _, topo := range allTopologies() {
		for n := NodeID(0); int(n) < topo.Nodes(); n++ {
			for p := Port(0); int(p) < topo.Degree(); p++ {
				next, ok := topo.Neighbor(n, p)
				if !ok {
					continue
				}
				rp := topo.ReversePort(n, p)
				back, ok2 := topo.Neighbor(next, rp)
				if !ok2 || back != n {
					t.Fatalf("%s: reverse of (%d,%d) broken: got (%d,%v)", topo.Name(), n, p, back, ok2)
				}
			}
		}
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	for _, topo := range allTopologies() {
		nodes := topo.Nodes()
		if nodes > 128 {
			nodes = 128 // bound the O(n^2) scan on big instances
		}
		for a := NodeID(0); int(a) < nodes; a++ {
			if topo.Distance(a, a) != 0 {
				t.Fatalf("%s: Distance(%d,%d) != 0", topo.Name(), a, a)
			}
			for b := NodeID(0); int(b) < nodes; b++ {
				dab, dba := topo.Distance(a, b), topo.Distance(b, a)
				if dab != dba {
					t.Fatalf("%s: asymmetric distance %d vs %d", topo.Name(), dab, dba)
				}
				if a != b && dab <= 0 {
					t.Fatalf("%s: Distance(%d,%d) = %d", topo.Name(), a, b, dab)
				}
				if dab > topo.Diameter() {
					t.Fatalf("%s: distance %d exceeds diameter %d", topo.Name(), dab, topo.Diameter())
				}
			}
		}
	}
}

// Distance must equal shortest-path distance over Neighbor edges.
func TestDistanceMatchesBFS(t *testing.T) {
	for _, topo := range allTopologies() {
		if topo.Nodes() > 128 {
			continue
		}
		src := NodeID(topo.Nodes() / 3)
		dist := bfs(topo, src)
		for n := 0; n < topo.Nodes(); n++ {
			if dist[n] != topo.Distance(src, NodeID(n)) {
				t.Fatalf("%s: Distance(%d,%d) = %d, BFS says %d",
					topo.Name(), src, n, topo.Distance(src, NodeID(n)), dist[n])
			}
		}
	}
}

func bfs(topo Topology, src NodeID) []int {
	dist := make([]int, topo.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for p := Port(0); int(p) < topo.Degree(); p++ {
			if next, ok := topo.Neighbor(cur, p); ok && dist[next] < 0 {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return dist
}

func TestMinimalPortsReduceDistance(t *testing.T) {
	for _, topo := range allTopologies() {
		nodes := topo.Nodes()
		step := 1
		if nodes > 64 {
			step = nodes / 64
		}
		var buf []Port
		for a := 0; a < nodes; a += step {
			for b := 0; b < nodes; b += step {
				cur, dst := NodeID(a), NodeID(b)
				buf = topo.MinimalPorts(cur, dst, buf[:0])
				if cur == dst {
					if len(buf) != 0 {
						t.Fatalf("%s: MinimalPorts at destination non-empty", topo.Name())
					}
					continue
				}
				if len(buf) == 0 {
					t.Fatalf("%s: no minimal port from %d to %d", topo.Name(), a, b)
				}
				d := topo.Distance(cur, dst)
				for _, p := range buf {
					next, ok := topo.Neighbor(cur, p)
					if !ok {
						t.Fatalf("%s: minimal port %d unconnected at %d", topo.Name(), p, a)
					}
					if nd := topo.Distance(next, dst); nd != d-1 {
						t.Fatalf("%s: port %d from %d to %d gives distance %d, want %d",
							topo.Name(), p, a, b, nd, d-1)
					}
				}
			}
		}
	}
}

func TestTorusEquidistantGivesBothDirections(t *testing.T) {
	g := NewTorus(4, 1)
	var buf []Port
	buf = g.MinimalPorts(g.Node(0), g.Node(2), buf)
	if len(buf) != 2 {
		t.Fatalf("k/2-apart nodes should have 2 minimal ports, got %v", buf)
	}
}

func TestMeshEdgePortsUnconnected(t *testing.T) {
	g := NewMesh(4, 2)
	if _, ok := g.Neighbor(g.Node(3, 0), PortFor(0, true)); ok {
		t.Error("+x port of east edge should be unconnected")
	}
	if _, ok := g.Neighbor(g.Node(0, 2), PortFor(0, false)); ok {
		t.Error("-x port of west edge should be unconnected")
	}
	if _, ok := g.Neighbor(g.Node(2, 3), PortFor(1, true)); ok {
		t.Error("+y port of north edge should be unconnected")
	}
}

func TestDatelineOnlyOnWrapChannels(t *testing.T) {
	g := NewTorus(4, 2)
	// +x dateline: nodes with x == 3.
	if !g.CrossesDateline(g.Node(3, 1), PortFor(0, true)) {
		t.Error("wrap +x channel not flagged as dateline")
	}
	if g.CrossesDateline(g.Node(2, 1), PortFor(0, true)) {
		t.Error("interior +x channel flagged as dateline")
	}
	// -x dateline: nodes with x == 0.
	if !g.CrossesDateline(g.Node(0, 2), PortFor(0, false)) {
		t.Error("wrap -x channel not flagged as dateline")
	}
	m := NewMesh(4, 2)
	for n := NodeID(0); int(n) < m.Nodes(); n++ {
		for p := Port(0); int(p) < m.Degree(); p++ {
			if m.CrossesDateline(n, p) {
				t.Fatal("mesh reported a dateline crossing")
			}
		}
	}
	h := NewHypercube(4)
	if h.CrossesDateline(3, 1) {
		t.Error("hypercube reported a dateline crossing")
	}
}

// Exactly one dateline channel per ring per direction.
func TestDatelineCountPerRing(t *testing.T) {
	g := NewTorus(8, 2)
	for d := 0; d < 2; d++ {
		for _, plus := range []bool{true, false} {
			// Walk the ring containing node 0 varying dimension d.
			count := 0
			for c := 0; c < g.Radix(); c++ {
				var n NodeID
				if d == 0 {
					n = g.Node(c, 0)
				} else {
					n = g.Node(0, c)
				}
				if g.CrossesDateline(n, PortFor(d, plus)) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("dim %d plus=%v: %d dateline channels per ring, want 1", d, plus, count)
			}
		}
	}
}

func TestAverageDistance(t *testing.T) {
	for _, topo := range allTopologies() {
		if topo.Nodes() > 128 {
			continue
		}
		sum, pairs := 0, 0
		for a := 0; a < topo.Nodes(); a++ {
			for b := 0; b < topo.Nodes(); b++ {
				if a == b {
					continue
				}
				sum += topo.Distance(NodeID(a), NodeID(b))
				pairs++
			}
		}
		want := float64(sum) / float64(pairs)
		if got := topo.AverageDistance(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: AverageDistance() = %v, brute force %v", topo.Name(), got, want)
		}
	}
}

func TestDiameterExact(t *testing.T) {
	for _, topo := range allTopologies() {
		if topo.Nodes() > 128 {
			continue
		}
		max := 0
		for a := 0; a < topo.Nodes(); a++ {
			for b := 0; b < topo.Nodes(); b++ {
				if d := topo.Distance(NodeID(a), NodeID(b)); d > max {
					max = d
				}
			}
		}
		if got := topo.Diameter(); got != max {
			t.Errorf("%s: Diameter() = %d, brute force %d", topo.Name(), got, max)
		}
	}
}

func TestPortHelpers(t *testing.T) {
	if PortDim(PortFor(3, true)) != 3 || !PortPlus(PortFor(3, true)) {
		t.Error("PortFor(3,true) round trip failed")
	}
	if PortDim(PortFor(2, false)) != 2 || PortPlus(PortFor(2, false)) {
		t.Error("PortFor(2,false) round trip failed")
	}
}

func TestQuickTorusDistanceSymmetry(t *testing.T) {
	g := NewTorus(16, 2)
	f := func(a, b uint16) bool {
		x := NodeID(int(a) % g.Nodes())
		y := NodeID(int(b) % g.Nodes())
		return g.Distance(x, y) == g.Distance(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHypercubeDistanceIsHamming(t *testing.T) {
	h := NewHypercube(10)
	f := func(a, b uint16) bool {
		x := NodeID(int(a) % h.Nodes())
		y := NodeID(int(b) % h.Nodes())
		want := 0
		for v := uint32(x ^ y); v != 0; v &= v - 1 {
			want++
		}
		return h.Distance(x, y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"torus k=1":     func() { NewTorus(1, 2) },
		"mesh n=0":      func() { NewMesh(4, 0) },
		"hypercube n=0": func() { NewHypercube(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
