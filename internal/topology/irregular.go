package topology

import "fmt"

// Irregular is an arbitrary connected graph topology built from an edge
// list. It backs the paper's claim that CR applies to any topology: the
// protocol only needs distances (for padding) and minimal ports (for
// routing), both of which are derived here with BFS — no regular
// structure, dateline or dimension order required.
//
// Edges are bidirectional; each endpoint gets one port per incident
// edge, in insertion order.
type Irregular struct {
	name    string
	nodes   int
	ports   [][]irrPort // [node][port]
	dist    [][]int32   // all-pairs shortest-path distances
	diam    int
	avgDist float64
}

type irrPort struct {
	to      NodeID
	revPort Port
}

// Edge is one bidirectional connection for NewIrregular.
type Edge struct {
	A, B NodeID
}

// NewIrregular builds a topology from an edge list over nodes
// 0..nodes-1. It returns an error for self-loops, duplicate edges,
// out-of-range endpoints or a disconnected graph.
func NewIrregular(name string, nodes int, edges []Edge) (*Irregular, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("topology: irregular graph needs >= 2 nodes, have %d", nodes)
	}
	t := &Irregular{name: name, nodes: nodes, ports: make([][]irrPort, nodes)}
	seen := make(map[[2]NodeID]bool)
	for _, e := range edges {
		if e.A == e.B {
			return nil, fmt.Errorf("topology: self-loop at node %d", e.A)
		}
		if e.A < 0 || int(e.A) >= nodes || e.B < 0 || int(e.B) >= nodes {
			return nil, fmt.Errorf("topology: edge %d-%d out of range", e.A, e.B)
		}
		key := [2]NodeID{e.A, e.B}
		if e.A > e.B {
			key = [2]NodeID{e.B, e.A}
		}
		if seen[key] {
			return nil, fmt.Errorf("topology: duplicate edge %d-%d", e.A, e.B)
		}
		seen[key] = true
		pa := Port(len(t.ports[e.A]))
		pb := Port(len(t.ports[e.B]))
		t.ports[e.A] = append(t.ports[e.A], irrPort{to: e.B, revPort: pb})
		t.ports[e.B] = append(t.ports[e.B], irrPort{to: e.A, revPort: pa})
	}
	if err := t.computeDistances(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustIrregular is NewIrregular that panics on error, for static
// literals in tests and examples.
func MustIrregular(name string, nodes int, edges []Edge) *Irregular {
	t, err := NewIrregular(name, nodes, edges)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Irregular) computeDistances() error {
	t.dist = make([][]int32, t.nodes)
	sum, pairs := 0.0, 0.0
	for src := 0; src < t.nodes; src++ {
		d := make([]int32, t.nodes)
		for i := range d {
			d[i] = -1
		}
		d[src] = 0
		queue := []NodeID{NodeID(src)}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, p := range t.ports[cur] {
				if d[p.to] < 0 {
					d[p.to] = d[cur] + 1
					queue = append(queue, p.to)
				}
			}
		}
		for n, v := range d {
			if v < 0 {
				return fmt.Errorf("topology: graph disconnected (node %d unreachable from %d)", n, src)
			}
			if int(v) > t.diam {
				t.diam = int(v)
			}
			if n != src {
				sum += float64(v)
				pairs++
			}
		}
		t.dist[src] = d
	}
	t.avgDist = sum / pairs
	return nil
}

// Name implements Topology.
func (t *Irregular) Name() string { return t.name }

// Nodes implements Topology.
func (t *Irregular) Nodes() int { return t.nodes }

// Degree implements Topology: the maximum port count over all nodes.
// Nodes with fewer incident edges leave their high ports unconnected.
func (t *Irregular) Degree() int {
	max := 0
	for _, ps := range t.ports {
		if len(ps) > max {
			max = len(ps)
		}
	}
	return max
}

// Neighbor implements Topology.
func (t *Irregular) Neighbor(n NodeID, p Port) (NodeID, bool) {
	if n < 0 || int(n) >= t.nodes || p < 0 || int(p) >= len(t.ports[n]) {
		return 0, false
	}
	return t.ports[n][p].to, true
}

// ReversePort implements Topology.
func (t *Irregular) ReversePort(n NodeID, p Port) Port {
	if _, ok := t.Neighbor(n, p); !ok {
		panic(fmt.Sprintf("topology: ReversePort of unconnected (%d,%d)", n, p))
	}
	return t.ports[n][p].revPort
}

// Distance implements Topology.
func (t *Irregular) Distance(a, b NodeID) int { return int(t.dist[a][b]) }

// Diameter implements Topology.
func (t *Irregular) Diameter() int { return t.diam }

// AverageDistance implements Topology.
func (t *Irregular) AverageDistance() float64 { return t.avgDist }

// MinimalPorts implements Topology: every port whose neighbor is
// strictly closer to dst.
func (t *Irregular) MinimalPorts(cur, dst NodeID, buf []Port) []Port {
	if cur == dst {
		return buf
	}
	d := t.dist[cur][dst]
	for i, p := range t.ports[cur] {
		if t.dist[p.to][dst] == d-1 {
			buf = append(buf, Port(i))
		}
	}
	return buf
}

// CrossesDateline implements Topology: irregular graphs carry no
// dateline structure (DOR does not apply to them; CR does).
func (t *Irregular) CrossesDateline(NodeID, Port) bool { return false }

var _ Topology = (*Irregular)(nil)
