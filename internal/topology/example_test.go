package topology_test

import (
	"fmt"

	"crnet/internal/topology"
)

// The paper's evaluation network: a 16-ary 2-cube (torus).
func ExampleNewTorus() {
	g := topology.NewTorus(16, 2)
	fmt.Println(g.Name(), g.Nodes(), "nodes, diameter", g.Diameter())
	// Wraparound makes (15,0) a neighbor of (0,0).
	fmt.Println("distance (0,0)->(15,0):", g.Distance(g.Node(0, 0), g.Node(15, 0)))
	// Output:
	// 16x16 torus 256 nodes, diameter 16
	// distance (0,0)->(15,0): 1
}

// Minimal ports: the adaptive choices at one node.
func ExampleGrid_MinimalPorts() {
	g := topology.NewTorus(8, 2)
	ports := g.MinimalPorts(g.Node(0, 0), g.Node(2, 3), nil)
	fmt.Println("productive ports toward (2,3):", len(ports))
	// Output:
	// productive ports toward (2,3): 2
}

// CR routes any connected graph: a little 4-node diamond.
func ExampleNewIrregular() {
	g, err := topology.NewIrregular("diamond", 4, []topology.Edge{
		{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 3}, {A: 2, B: 3},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(g.Name(), "diameter", g.Diameter(), "avg", g.AverageDistance())
	// Two minimal next hops from 0 to 3.
	fmt.Println("minimal ports 0->3:", len(g.MinimalPorts(0, 3, nil)))
	// Output:
	// diamond diameter 2 avg 1.3333333333333333
	// minimal ports 0->3: 2
}
