package topology

import (
	"testing"

	"crnet/internal/rng"
)

// pentagonPlus is a 6-node irregular graph: a 5-cycle with a center node
// attached to two of its vertices.
func pentagonPlus(t *testing.T) *Irregular {
	t.Helper()
	g, err := NewIrregular("pentagon+", 6, []Edge{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // 5-cycle
		{5, 0}, {5, 2}, // center
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIrregularBasics(t *testing.T) {
	g := pentagonPlus(t)
	if g.Nodes() != 6 || g.Name() != "pentagon+" {
		t.Fatal("metadata wrong")
	}
	// Node 0 has edges to 1, 4, 5: degree contribution 3; node 2 also 3.
	if g.Degree() != 3 {
		t.Fatalf("degree = %d, want 3", g.Degree())
	}
	if g.Distance(1, 4) != 2 || g.Distance(5, 3) != 2 || g.Distance(0, 2) != 2 {
		t.Fatal("distances wrong")
	}
	if g.Diameter() != 2 {
		t.Fatalf("diameter = %d", g.Diameter())
	}
}

func TestIrregularReverseInverse(t *testing.T) {
	g := pentagonPlus(t)
	for n := NodeID(0); int(n) < g.Nodes(); n++ {
		for p := Port(0); int(p) < g.Degree(); p++ {
			next, ok := g.Neighbor(n, p)
			if !ok {
				continue
			}
			back, ok2 := g.Neighbor(next, g.ReversePort(n, p))
			if !ok2 || back != n {
				t.Fatalf("reverse of (%d,%d) broken", n, p)
			}
		}
	}
}

func TestIrregularMinimalPortsReduceDistance(t *testing.T) {
	g := pentagonPlus(t)
	var buf []Port
	for a := NodeID(0); int(a) < g.Nodes(); a++ {
		for b := NodeID(0); int(b) < g.Nodes(); b++ {
			buf = g.MinimalPorts(a, b, buf[:0])
			if a == b {
				if len(buf) != 0 {
					t.Fatal("minimal ports at destination")
				}
				continue
			}
			if len(buf) == 0 {
				t.Fatalf("no minimal port %d->%d", a, b)
			}
			for _, p := range buf {
				next, _ := g.Neighbor(a, p)
				if g.Distance(next, b) != g.Distance(a, b)-1 {
					t.Fatalf("port %d from %d to %d not minimal", p, a, b)
				}
			}
		}
	}
}

func TestIrregularValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
		edges []Edge
	}{
		{"self-loop", 3, []Edge{{0, 0}, {0, 1}, {1, 2}}},
		{"duplicate", 3, []Edge{{0, 1}, {1, 0}, {1, 2}}},
		{"out of range", 3, []Edge{{0, 5}}},
		{"disconnected", 4, []Edge{{0, 1}, {2, 3}}},
		{"too small", 1, nil},
	}
	for _, c := range cases {
		if _, err := NewIrregular(c.name, c.nodes, c.edges); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIrregular did not panic")
		}
	}()
	MustIrregular("bad", 1, nil)
}

// RandomConnected builds a random connected graph the same way the CR
// generality test does: a random spanning tree plus extra chords.
func randomConnected(t *testing.T, nodes, extra int, seed uint64) *Irregular {
	t.Helper()
	r := rng.New(seed)
	var edges []Edge
	have := map[[2]NodeID]bool{}
	add := func(a, b NodeID) bool {
		if a == b {
			return false
		}
		key := [2]NodeID{a, b}
		if a > b {
			key = [2]NodeID{b, a}
		}
		if have[key] {
			return false
		}
		have[key] = true
		edges = append(edges, Edge{a, b})
		return true
	}
	perm := make([]int, nodes)
	r.Perm(perm)
	for i := 1; i < nodes; i++ {
		add(NodeID(perm[i]), NodeID(perm[r.Intn(i)]))
	}
	for len(edges) < nodes-1+extra {
		add(NodeID(r.Intn(nodes)), NodeID(r.Intn(nodes)))
	}
	g, err := NewIrregular("random", nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIrregularRandomGraphsMetricConsistency(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomConnected(t, 20, 15, seed)
		// BFS distances must agree with the generic checker used for
		// regular topologies.
		dist := bfs(g, 7)
		for n := 0; n < g.Nodes(); n++ {
			if dist[n] != g.Distance(7, NodeID(n)) {
				t.Fatalf("seed %d: distance mismatch at node %d", seed, n)
			}
		}
		// Symmetry.
		for a := NodeID(0); int(a) < g.Nodes(); a++ {
			for b := NodeID(0); int(b) < g.Nodes(); b++ {
				if g.Distance(a, b) != g.Distance(b, a) {
					t.Fatalf("seed %d: asymmetric distance", seed)
				}
			}
		}
	}
}
