// Package topology defines the direct-network topologies the simulator
// routes over: k-ary n-cubes with (torus) and without (mesh) wraparound
// channels, and binary hypercubes.
//
// A topology is a static port-labelled graph. Nodes are dense integer ids
// in [0, Nodes()); each node exposes up to Degree() network ports. The
// routing and router packages work purely in terms of (node, port) pairs,
// so new topologies only need to implement the Topology interface.
package topology

import "fmt"

// NodeID identifies a node (router + processing element) in the network.
type NodeID int

// Port identifies one outgoing network channel of a node. Ports are dense
// in [0, Degree()); a port may be unconnected on asymmetric topologies
// such as mesh edges.
type Port int

// InvalidPort marks "no port"; used by routing functions for sentinel
// returns.
const InvalidPort Port = -1

// Topology describes a static direct network.
//
// Implementations must be immutable after construction; they are shared
// by every router and routing function without synchronization.
type Topology interface {
	// Name returns a short human-readable description, e.g. "16x16 torus".
	Name() string

	// Nodes returns the number of nodes.
	Nodes() int

	// Degree returns the number of port slots per node. Individual ports
	// may still be unconnected (Neighbor reports ok=false).
	Degree() int

	// Neighbor returns the node reached over port p of node n. ok is
	// false when the port is unconnected (e.g. the +x port of the last
	// column of a mesh).
	Neighbor(n NodeID, p Port) (next NodeID, ok bool)

	// ReversePort returns the port at Neighbor(n, p) whose channel leads
	// back to n. It panics if (n, p) is unconnected.
	ReversePort(n NodeID, p Port) Port

	// Distance returns the minimal hop count from a to b.
	Distance(a, b NodeID) int

	// Diameter returns the maximum Distance over all node pairs.
	Diameter() int

	// AverageDistance returns the mean Distance between distinct node
	// pairs under uniform traffic; used to normalize offered load.
	AverageDistance() float64

	// MinimalPorts appends to buf every port of cur whose channel strictly
	// reduces Distance to dst, and returns the extended slice. The result
	// is empty iff cur == dst. Ports are appended in ascending order so
	// deterministic policies built on top remain reproducible.
	MinimalPorts(cur, dst NodeID, buf []Port) []Port

	// CrossesDateline reports whether the channel (n, p) is a wraparound
	// channel of its dimension's ring. Dimension-order routing on tori
	// switches virtual-channel class when crossing such a channel
	// (Dally-Seitz dateline discipline). Meshes and hypercubes always
	// report false.
	CrossesDateline(n NodeID, p Port) bool
}

// Grid is a k-ary n-cube: n dimensions of k nodes each, with optional
// wraparound links. Wrap=true is the torus used throughout the paper's
// evaluation; Wrap=false is the mesh.
type Grid struct {
	k, n    int
	wrap    bool
	nodes   int
	avgDist float64
	diam    int
}

// NewTorus returns a k-ary n-cube with wraparound channels.
func NewTorus(k, n int) *Grid { return newGrid(k, n, true) }

// NewMesh returns a k-ary n-cube without wraparound channels.
func NewMesh(k, n int) *Grid { return newGrid(k, n, false) }

func newGrid(k, n int, wrap bool) *Grid {
	if k < 2 {
		panic(fmt.Sprintf("topology: radix k=%d must be >= 2", k))
	}
	if n < 1 {
		panic(fmt.Sprintf("topology: dimension n=%d must be >= 1", n))
	}
	g := &Grid{k: k, n: n, wrap: wrap}
	g.nodes = 1
	for i := 0; i < n; i++ {
		g.nodes *= k
	}
	g.avgDist = g.computeAverageDistance()
	g.diam = g.computeDiameter()
	return g
}

// Radix returns k, the nodes per dimension.
func (g *Grid) Radix() int { return g.k }

// Dims returns n, the number of dimensions.
func (g *Grid) Dims() int { return g.n }

// Wrap reports whether the grid has wraparound (torus) channels.
func (g *Grid) Wrap() bool { return g.wrap }

// Name implements Topology.
func (g *Grid) Name() string {
	kind := "mesh"
	if g.wrap {
		kind = "torus"
	}
	s := ""
	for i := 0; i < g.n; i++ {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(g.k)
	}
	return s + " " + kind
}

// Nodes implements Topology.
func (g *Grid) Nodes() int { return g.nodes }

// Degree implements Topology. Port 2d is the +direction of dimension d,
// port 2d+1 the -direction.
func (g *Grid) Degree() int { return 2 * g.n }

// Coord returns the coordinate of node id in dimension d.
func (g *Grid) Coord(id NodeID, d int) int {
	c := int(id)
	for i := 0; i < d; i++ {
		c /= g.k
	}
	return c % g.k
}

// Node returns the node id at the given coordinates. Coordinates are
// taken modulo k so callers may pass unnormalized values.
func (g *Grid) Node(coords ...int) NodeID {
	if len(coords) != g.n {
		panic(fmt.Sprintf("topology: Node wants %d coords, got %d", g.n, len(coords)))
	}
	id, stride := 0, 1
	for d := 0; d < g.n; d++ {
		c := coords[d] % g.k
		if c < 0 {
			c += g.k
		}
		id += c * stride
		stride *= g.k
	}
	return NodeID(id)
}

// PortDim returns the dimension a port belongs to.
func PortDim(p Port) int { return int(p) / 2 }

// PortPlus reports whether a port points in its dimension's +direction.
func PortPlus(p Port) bool { return int(p)%2 == 0 }

// PortFor returns the port for dimension d in the given direction.
func PortFor(d int, plus bool) Port {
	p := Port(2 * d)
	if !plus {
		p++
	}
	return p
}

// Neighbor implements Topology.
func (g *Grid) Neighbor(n NodeID, p Port) (NodeID, bool) {
	d := PortDim(p)
	if d >= g.n || p < 0 {
		return 0, false
	}
	c := g.Coord(n, d)
	var nc int
	if PortPlus(p) {
		nc = c + 1
		if nc == g.k {
			if !g.wrap {
				return 0, false
			}
			nc = 0
		}
	} else {
		nc = c - 1
		if nc < 0 {
			if !g.wrap {
				return 0, false
			}
			nc = g.k - 1
		}
	}
	return g.withCoord(n, d, nc), true
}

// withCoord returns n with dimension d's coordinate replaced by c.
func (g *Grid) withCoord(n NodeID, d, c int) NodeID {
	stride := 1
	for i := 0; i < d; i++ {
		stride *= g.k
	}
	old := g.Coord(n, d)
	return n + NodeID((c-old)*stride)
}

// ReversePort implements Topology.
func (g *Grid) ReversePort(n NodeID, p Port) Port {
	if _, ok := g.Neighbor(n, p); !ok {
		panic(fmt.Sprintf("topology: ReversePort of unconnected port %d at node %d", p, n))
	}
	if PortPlus(p) {
		return p + 1
	}
	return p - 1
}

// Distance implements Topology.
func (g *Grid) Distance(a, b NodeID) int {
	dist := 0
	for d := 0; d < g.n; d++ {
		delta := g.Coord(b, d) - g.Coord(a, d)
		if delta < 0 {
			delta = -delta
		}
		if g.wrap && g.k-delta < delta {
			delta = g.k - delta
		}
		dist += delta
	}
	return dist
}

// Diameter implements Topology.
func (g *Grid) Diameter() int { return g.diam }

func (g *Grid) computeDiameter() int {
	per := g.k - 1
	if g.wrap {
		per = g.k / 2
	}
	return per * g.n
}

// AverageDistance implements Topology.
func (g *Grid) AverageDistance() float64 { return g.avgDist }

func (g *Grid) computeAverageDistance() float64 {
	// Per-dimension mean ring/line distance between two independent
	// uniform coordinates, times n; exclude the self pair globally.
	sum := 0.0
	for a := 0; a < g.k; a++ {
		for b := 0; b < g.k; b++ {
			delta := a - b
			if delta < 0 {
				delta = -delta
			}
			if g.wrap && g.k-delta < delta {
				delta = g.k - delta
			}
			sum += float64(delta)
		}
	}
	perDim := sum / float64(g.k*g.k)
	total := perDim * float64(g.n)
	// Condition on the pair being distinct: E[d | a != b] = E[d] * N/(N-1)
	// because d=0 exactly when a == b (probability 1/N).
	nn := float64(g.nodes)
	return total * nn / (nn - 1)
}

// MinimalPorts implements Topology. On a torus with even k and a delta of
// exactly k/2 in some dimension, both directions are minimal and both are
// returned — this is where torus adaptivity exceeds the mesh's.
func (g *Grid) MinimalPorts(cur, dst NodeID, buf []Port) []Port {
	for d := 0; d < g.n; d++ {
		cc, dc := g.Coord(cur, d), g.Coord(dst, d)
		if cc == dc {
			continue
		}
		fwd := dc - cc // + direction travel, unwrapped
		if fwd < 0 {
			fwd += g.k
		}
		bwd := g.k - fwd
		switch {
		case !g.wrap:
			if dc > cc {
				buf = append(buf, PortFor(d, true))
			} else {
				buf = append(buf, PortFor(d, false))
			}
		case fwd < bwd:
			buf = append(buf, PortFor(d, true))
		case bwd < fwd:
			buf = append(buf, PortFor(d, false))
		default: // equidistant both ways around the ring
			buf = append(buf, PortFor(d, true), PortFor(d, false))
		}
	}
	return buf
}

// CrossesDateline implements Topology. The dateline of each ring is the
// channel between coordinates k-1 and 0: the +port of the node with
// coordinate k-1 and the -port of the node with coordinate 0.
func (g *Grid) CrossesDateline(n NodeID, p Port) bool {
	if !g.wrap {
		return false
	}
	d := PortDim(p)
	if d >= g.n {
		return false
	}
	c := g.Coord(n, d)
	if PortPlus(p) {
		return c == g.k-1
	}
	return c == 0
}

// Hypercube is the binary n-cube: 2^n nodes, one port per dimension.
type Hypercube struct {
	n     int
	nodes int
	avg   float64
}

// NewHypercube returns an n-dimensional binary hypercube.
func NewHypercube(n int) *Hypercube {
	if n < 1 || n > 30 {
		panic(fmt.Sprintf("topology: hypercube dimension %d out of range [1,30]", n))
	}
	h := &Hypercube{n: n, nodes: 1 << n}
	// Mean Hamming distance of two uniform n-bit strings is n/2;
	// conditioned on distinct pairs, scale by N/(N-1).
	nn := float64(h.nodes)
	h.avg = float64(n) / 2 * nn / (nn - 1)
	return h
}

// Dims returns the hypercube's dimension count.
func (h *Hypercube) Dims() int { return h.n }

// Name implements Topology.
func (h *Hypercube) Name() string { return fmt.Sprintf("%d-cube", h.n) }

// Nodes implements Topology.
func (h *Hypercube) Nodes() int { return h.nodes }

// Degree implements Topology. Port d flips address bit d.
func (h *Hypercube) Degree() int { return h.n }

// Neighbor implements Topology.
func (h *Hypercube) Neighbor(n NodeID, p Port) (NodeID, bool) {
	if p < 0 || int(p) >= h.n {
		return 0, false
	}
	return n ^ (1 << uint(p)), true
}

// ReversePort implements Topology: hypercube channels are symmetric.
func (h *Hypercube) ReversePort(n NodeID, p Port) Port {
	if p < 0 || int(p) >= h.n {
		panic(fmt.Sprintf("topology: ReversePort of invalid port %d", p))
	}
	return p
}

// Distance implements Topology: Hamming distance.
func (h *Hypercube) Distance(a, b NodeID) int {
	x := uint32(a ^ b)
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// Diameter implements Topology.
func (h *Hypercube) Diameter() int { return h.n }

// AverageDistance implements Topology.
func (h *Hypercube) AverageDistance() float64 { return h.avg }

// MinimalPorts implements Topology: every differing address bit is a
// productive dimension.
func (h *Hypercube) MinimalPorts(cur, dst NodeID, buf []Port) []Port {
	diff := uint32(cur ^ dst)
	for d := 0; diff != 0; d++ {
		if diff&1 != 0 {
			buf = append(buf, Port(d))
		}
		diff >>= 1
	}
	return buf
}

// CrossesDateline implements Topology: hypercube rings have length 2 and
// dimension-order routing on them is cycle-free without datelines.
func (h *Hypercube) CrossesDateline(NodeID, Port) bool { return false }

// Compile-time interface checks.
var (
	_ Topology = (*Grid)(nil)
	_ Topology = (*Hypercube)(nil)
)
