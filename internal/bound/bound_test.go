package bound

import (
	"testing"

	"crnet/internal/core"
)

// quickModel mirrors the quick-scale CR network: 8x8 torus (degree 4,
// diameter 8), 1 VC, 1 injection channel, 16-flit messages.
func quickModel(absorb int) Model {
	return Model{
		Degree:            4,
		Diameter:          8,
		VCs:               1,
		InjectionChannels: 1,
		Absorb:            absorb,
		MsgLen:            16,
		CR:                true,
	}
}

func TestCompetitors(t *testing.T) {
	m := quickModel(2)
	if c := m.Competitors(); c != 5 {
		t.Fatalf("Competitors = %d, want 5", c)
	}
	m.VCs = 4
	m.InjectionChannels = 2
	if c := m.Competitors(); c != 18 {
		t.Fatalf("Competitors = %d, want 18", c)
	}
}

func TestFlowLenPadding(t *testing.T) {
	m := quickModel(2)
	// IminCR(8, 2) = 19 > 16: padding governs.
	if l, want := m.FlowLen(8), core.IminCR(8, 2); l != want {
		t.Fatalf("FlowLen(8) = %d, want padded %d", l, want)
	}
	// Short paths need no padding beyond the message.
	if l := m.FlowLen(1); l != 16 {
		t.Fatalf("FlowLen(1) = %d, want 16", l)
	}
	// Without CR the message length always governs.
	m.CR = false
	if l := m.FlowLen(8); l != 16 {
		t.Fatalf("plain FlowLen(8) = %d, want 16", l)
	}
}

func TestFlowBoundStructure(t *testing.T) {
	m := quickModel(2)
	// The zero-contention floor: a flow is never bounded below its own
	// serialization (one arbitration win per hop plus the body).
	for dist := 0; dist <= m.Diameter; dist++ {
		if b, floor := m.FlowBound(dist), dist+1+m.FlowLen(dist)-1; b < floor {
			t.Fatalf("FlowBound(%d) = %d below serialization floor %d", dist, b, floor)
		}
	}
	// Monotone in distance.
	for dist := 1; dist <= m.Diameter; dist++ {
		if m.FlowBound(dist) <= m.FlowBound(dist-1) {
			t.Fatalf("FlowBound not monotone at dist %d", dist)
		}
	}
	// Exact value at the quick-scale diameter: L = IminCR(8,2) = 19,
	// drain = 19 + 2*8 = 35, per-hop = 4*35 + 1 = 141, 9 hops + 18.
	if b := m.NetworkBound(); b != 9*141+18 {
		t.Fatalf("NetworkBound = %d, want %d", b, 9*141+18)
	}
}

func TestAbsorbMonotonicity(t *testing.T) {
	// Deeper absorption (shared organizations' wider windows) can only
	// grow the bound: longer pads, longer drains.
	prev := 0
	for _, absorb := range []int{1, 2, 3, 5, 8} {
		b := quickModel(absorb).NetworkBound()
		if b <= prev {
			t.Fatalf("NetworkBound(absorb=%d) = %d not above %d", absorb, b, prev)
		}
		prev = b
	}
}

func TestContentionMonotonicity(t *testing.T) {
	m := quickModel(2)
	base := m.NetworkBound()
	m.VCs = 4
	if m.NetworkBound() <= base {
		t.Fatal("more competing VCs must grow the bound")
	}
}
