// Package bound derives an analytical, buffer-organization-aware
// worst-case latency estimate for one message flow through the wormhole
// kernel, under the classic direct-interference model for wormhole
// networks with round-robin arbitration.
//
// The model: a worm crossing dist hops wins dist+1 arbitrations (each
// hop's output plus the ejection channel). At every arbitration it
// competes with at most C-1 other channels (C = deg*VCs + injection
// channels), and in the worst case waits for each competitor to drain
// through the output once before round-robin order reaches it. A
// competitor that starts moving occupies the output for its own worm
// length, and before it can move at all it may first have to sink into
// downstream buffering — at most Absorb flits at each of up to Diameter
// hops, where Absorb is the organization's worst-case per-hop, per-VC
// absorption (router.Config.AbsorbDepth: BufDepth for static FIFO, the
// window cap for DAMQ and credit-shared pools). Once the header wins
// its last arbitration the remaining L-1 flits stream behind it at one
// flit per cycle.
//
// The estimate is conservative for direct interference but is not a
// closed-form worst case for nested blocking chains (a competitor's
// competitor blocking, recursively) — those are exactly the potential
// deadlock cycles CR resolves by killing, so past the first level the
// protocol's timeout, not queueing theory, bounds the wait. The E32
// experiment checks the estimate empirically: at sub-saturation loads
// the observed worst in-network residence of any delivered attempt must
// stay under FlowBound for every buffer organization.
package bound

import "crnet/internal/core"

// Model captures the network parameters the bound depends on.
type Model struct {
	// Degree is the router's network-port count (topology degree).
	Degree int
	// Diameter bounds minimal-path hop counts (topology diameter).
	Diameter int
	// VCs is the virtual-channel count per network port.
	VCs int
	// InjectionChannels is the per-node injection channel count.
	InjectionChannels int
	// Absorb is the organization's worst-case per-hop, per-VC flit
	// absorption (router.Config.AbsorbDepth).
	Absorb int
	// MsgLen is the message length in flits, head included.
	MsgLen int
	// CR pads worms to the compressionless minimum (core.IminCR) when
	// MsgLen falls short of it.
	CR bool
}

// Competitors returns C: how many input channels can contend for one
// output port of a router (every network VC plus the local injection
// channels).
func (m Model) Competitors() int {
	return m.Degree*m.VCs + m.InjectionChannels
}

// FlowLen returns the framed worm length of a flow whose path is at
// most dist hops: the message itself, padded to the CR minimum when the
// protocol requires it. Padding grows with Absorb — deeper absorption
// per hop demands a longer worm for the compressionless property to
// certify header delivery.
func (m Model) FlowLen(dist int) int {
	if m.CR {
		if imin := core.IminCR(dist, m.Absorb); imin > m.MsgLen {
			return imin
		}
	}
	return m.MsgLen
}

// HolderDrain returns the worst-case cycles one competitor occupies a
// contended output before vacating it: first sinking into up to
// Diameter hops of downstream buffering (Absorb flits each), then
// passing its full worm through.
func (m Model) HolderDrain() int {
	return m.FlowLen(m.Diameter) + m.Absorb*m.Diameter
}

// FlowBound returns the direct-interference latency estimate for a flow
// of at most dist hops: dist+1 arbitrations, each waiting behind up to
// C-1 competitors draining once, plus the body streaming behind the
// header.
func (m Model) FlowBound(dist int) int {
	perHop := (m.Competitors()-1)*m.HolderDrain() + 1
	return (dist+1)*perHop + m.FlowLen(dist) - 1
}

// NetworkBound returns FlowBound at the network diameter: the estimate
// covering every minimal-path flow in the topology.
func (m Model) NetworkBound() int {
	return m.FlowBound(m.Diameter)
}
