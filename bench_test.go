// Package crnet_test holds the repository-level benchmark harness: one
// testing.B benchmark per reproduced table/figure (see DESIGN.md's
// experiment index). Each benchmark executes the same experiment driver
// as `crbench -exp <id>` at a benchmark-sized scale and reports the
// experiment's headline quantity as a custom metric, so regressions in
// either performance or *results* are visible from `go test -bench=.`.
//
// The printable paper-style tables come from:
//
//	go run ./cmd/crbench -exp all -scale full
package crnet_test

import (
	"strconv"
	"testing"

	"crnet/internal/sim"
)

// benchScale keeps the full `go test -bench=.` run to a few minutes: an
// 8x8 torus with shortened windows and three load points. Shapes match
// the paper-scale runs; absolute values are noisier. Parallel: 0 runs
// every grid-based experiment's sweep over the internal/harness worker
// pool (all cores); results are byte-identical to a serial run, so only
// wall-clock changes.
var benchScale = sim.Scale{
	K:        8,
	MsgLen:   16,
	Warmup:   800,
	Measure:  3000,
	Loads:    []float64{0.2, 0.5, 0.8},
	Seed:     1,
	Parallel: 0,
}

// runExperiment executes the driver once per iteration and returns the
// last table for metric extraction.
func runExperiment(b *testing.B, id string) [][]string {
	b.Helper()
	e, ok := sim.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rows [][]string
	for i := 0; i < b.N; i++ {
		tbl := e.Run(benchScale)
		rows = rows[:0]
		for r := 0; r < tbl.NumRows(); r++ {
			rows = append(rows, tbl.Row(r))
		}
	}
	if len(rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	return rows
}

// cell parses a table cell as float, failing the benchmark otherwise.
func cell(b *testing.B, rows [][]string, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, rows[row][col], err)
	}
	return v
}

// maxInColumn returns the column's maximum over rows whose first column
// equals scheme ("" matches all rows).
func maxInColumn(b *testing.B, rows [][]string, scheme string, col int) float64 {
	b.Helper()
	best, found := 0.0, false
	for i := range rows {
		if scheme != "" && rows[i][0] != scheme {
			continue
		}
		if v := cell(b, rows, i, col); !found || v > best {
			best, found = v, true
		}
	}
	if !found {
		b.Fatalf("no rows for scheme %q", scheme)
	}
	return best
}

func BenchmarkE1LatencyVsLoad(b *testing.B) {
	rows := runExperiment(b, "E1")
	b.ReportMetric(maxInColumn(b, rows, "CR", 2), "peak_thpt")
	b.ReportMetric(cell(b, rows, 0, 3), "lowload_latency")
}

func BenchmarkE2KillRate(b *testing.B) {
	rows := runExperiment(b, "E2")
	b.ReportMetric(cell(b, rows, 0, 1), "kills/msg@low")
	b.ReportMetric(cell(b, rows, len(rows)-1, 1), "kills/msg@high")
}

func BenchmarkE3RetransmissionGap(b *testing.B) {
	rows := runExperiment(b, "E3")
	b.ReportMetric(maxInColumn(b, rows, "dynamic-exp", 2), "dynamic_peak_thpt")
	b.ReportMetric(maxInColumn(b, rows, "static-128", 2), "static128_peak_thpt")
}

func BenchmarkE4PDSEstimate(b *testing.B) {
	rows := runExperiment(b, "E4")
	b.ReportMetric(cell(b, rows, 0, 1), "pds/msg@low")
	b.ReportMetric(cell(b, rows, len(rows)-1, 1), "pds/msg@high")
}

func BenchmarkE5BufferDepth(b *testing.B) {
	rows := runExperiment(b, "E5")
	b.ReportMetric(maxInColumn(b, rows, "CR(d=2)", 2), "cr_d2_peak")
	b.ReportMetric(maxInColumn(b, rows, "DOR(d=16)", 2), "dor_d16_peak")
}

func BenchmarkE6VirtualChannels(b *testing.B) {
	rows := runExperiment(b, "E6")
	b.ReportMetric(maxInColumn(b, rows, "CR(vc=2)", 2), "cr_2vc_peak")
	b.ReportMetric(maxInColumn(b, rows, "DOR(vc=2,d=8)", 2), "dor_2vc_peak")
}

func BenchmarkE7InterfaceBandwidth(b *testing.B) {
	rows := runExperiment(b, "E7")
	b.ReportMetric(maxInColumn(b, rows, "CR(ch=1)", 2), "cr_1ch_peak")
	b.ReportMetric(maxInColumn(b, rows, "CR(ch=4)", 2), "cr_4ch_peak")
}

func BenchmarkE8TransientFaults(b *testing.B) {
	rows := runExperiment(b, "E8")
	// Corrupt deliveries under FCR must be zero at every fault rate.
	for _, r := range rows {
		if r[0] == "FCR" && r[4] != "0" {
			b.Fatalf("FCR delivered corrupt data: %v", r)
		}
	}
	b.ReportMetric(maxInColumn(b, rows, "FCR", 3), "max_fkills/msg")
}

func BenchmarkE9PermanentFaults(b *testing.B) {
	rows := runExperiment(b, "E9")
	for _, r := range rows {
		if r[len(r)-1] != "0" {
			b.Fatalf("messages abandoned under permanent faults: %v", r)
		}
	}
	b.ReportMetric(cell(b, rows, len(rows)-1, 2), "latency@8dead")
}

func BenchmarkE10TimeoutSensitivity(b *testing.B) {
	rows := runExperiment(b, "E10")
	b.ReportMetric(maxInColumn(b, rows, "8", 3), "kills/msg@t8")
	b.ReportMetric(maxInColumn(b, rows, "128", 3), "kills/msg@t128")
}

func BenchmarkE11HardwareCost(b *testing.B) {
	rows := runExperiment(b, "E11")
	b.ReportMetric(maxInColumn(b, rows, "CR(1vc,d=2)", 2), "cr_buffer_flits")
	b.ReportMetric(maxInColumn(b, rows, "DOR(2vc,d=16)", 2), "dor_buffer_flits")
}

func BenchmarkE12TrafficPatterns(b *testing.B) {
	rows := runExperiment(b, "E12")
	// Headline: CR vs DOR peak throughput on transpose.
	crBest, dorBest := 0.0, 0.0
	for _, r := range rows {
		if r[0] != "transpose" {
			continue
		}
		v, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			b.Fatal(err)
		}
		if r[1] == "CR" && v > crBest {
			crBest = v
		}
		if r[1] == "DOR" && v > dorBest {
			dorBest = v
		}
	}
	b.ReportMetric(crBest, "cr_transpose_peak")
	b.ReportMetric(dorBest, "dor_transpose_peak")
}

func BenchmarkE13PaddingOverhead(b *testing.B) {
	rows := runExperiment(b, "E13")
	b.ReportMetric(cell(b, rows, 0, 1), "cr_pad@len4")
	b.ReportMetric(cell(b, rows, len(rows)-1, 1), "cr_pad@len64")
}

func BenchmarkE14Properties(b *testing.B) {
	rows := runExperiment(b, "E14")
	for _, r := range rows {
		if r[len(r)-1] != "PASS" {
			b.Fatalf("property failed: %v", r)
		}
	}
	b.ReportMetric(float64(len(rows)), "properties_checked")
}

func BenchmarkE15TimeoutSchemes(b *testing.B) {
	rows := runExperiment(b, "E15")
	b.ReportMetric(maxInColumn(b, rows, "source-based", 4), "source_kills/msg")
	b.ReportMetric(maxInColumn(b, rows, "path-wide", 4), "pathwide_kills/msg")
}

func BenchmarkE16TurnModel(b *testing.B) {
	rows := runExperiment(b, "E16")
	best := func(scheme string) float64 {
		v := 0.0
		for _, r := range rows {
			if r[0] != "transpose" || r[1] != scheme {
				continue
			}
			if x, err := strconv.ParseFloat(r[3], 64); err == nil && x > v {
				v = x
			}
		}
		return v
	}
	b.ReportMetric(best("CR"), "cr_transpose_peak")
	b.ReportMetric(best("west-first"), "wf_transpose_peak")
	b.ReportMetric(best("DOR"), "dor_transpose_peak")
}

func BenchmarkE17LatencyDistribution(b *testing.B) {
	rows := runExperiment(b, "E17")
	b.ReportMetric(maxInColumn(b, rows, "CR", 5), "cr_max_p99")
	b.ReportMetric(maxInColumn(b, rows, "DOR", 5), "dor_max_p99")
}

func BenchmarkE19Applications(b *testing.B) {
	rows := runExperiment(b, "E19")
	for _, r := range rows {
		if r[2] == "DNF" {
			b.Fatalf("workload did not finish: %v", r)
		}
	}
	b.ReportMetric(float64(len(rows)), "workload_runs")
}

func BenchmarkE18BimodalTraffic(b *testing.B) {
	rows := runExperiment(b, "E18")
	b.ReportMetric(maxInColumn(b, rows, "CR", 3), "cr_peak_thpt")
	b.ReportMetric(maxInColumn(b, rows, "DOR", 3), "dor_peak_thpt")
}

func BenchmarkE20SelectionPolicy(b *testing.B) {
	rows := runExperiment(b, "E20")
	b.ReportMetric(maxInColumn(b, rows, "rotating", 3), "rotating_peak")
	b.ReportMetric(maxInColumn(b, rows, "first", 3), "first_peak")
	b.ReportMetric(maxInColumn(b, rows, "least-loaded", 3), "leastloaded_peak")
}

// benchmarkSweepWorkers runs E5 (the widest converted sweep: 5 series x
// 3 loads = 15 points) at a fixed worker-pool size, so `go test
// -bench=SweepWorkers` shows the harness speedup on this machine.
// Grid results are byte-identical across the variants; only wall-clock
// differs.
func benchmarkSweepWorkers(b *testing.B, workers int) {
	e, ok := sim.ByID("E5")
	if !ok {
		b.Fatal("E5 missing")
	}
	s := benchScale
	s.Parallel = workers
	for i := 0; i < b.N; i++ {
		if tbl := e.Run(s); tbl.NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkSweepWorkers1(b *testing.B)        { benchmarkSweepWorkers(b, 1) }
func BenchmarkSweepWorkers4(b *testing.B)        { benchmarkSweepWorkers(b, 4) }
func BenchmarkSweepWorkersAllCores(b *testing.B) { benchmarkSweepWorkers(b, 0) }

func BenchmarkE21PaddingMargin(b *testing.B) {
	rows := runExperiment(b, "E21")
	// The designed padding (adjust >= 0) must never lose a message.
	for _, r := range rows {
		if adj, err := strconv.Atoi(r[0]); err == nil && adj >= 0 {
			if r[1] != "0" {
				b.Fatalf("designed padding lost messages: %v", r)
			}
		}
	}
	b.ReportMetric(maxInColumn(b, rows, "-100", 1), "lost@-100")
}

func BenchmarkE25LatencyDecomposition(b *testing.B) {
	rows := runExperiment(b, "E25")
	// The phase partition must be exact at every point (sum_err column).
	for _, r := range rows {
		if r[8] != "0.0" {
			b.Fatalf("phase decomposition inexact: %v", r)
		}
	}
	b.ReportMetric(maxInColumn(b, rows, "CR(d=2)", 6), "cr_max_drain")
	b.ReportMetric(maxInColumn(b, rows, "CR(d=2)", 4), "cr_max_retry")
}

func BenchmarkE26OccupancySeries(b *testing.B) {
	rows := runExperiment(b, "E26")
	// Every load point must retain a non-empty sampled series.
	for _, r := range rows {
		if r[2] == "0" {
			b.Fatalf("point retained no samples: %v", r)
		}
	}
	b.ReportMetric(maxInColumn(b, rows, "CR(d=2)", 4), "max_occupancy")
}
