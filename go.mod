module crnet

go 1.22
